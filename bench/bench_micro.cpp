// Microbenchmarks for the substrates (google-benchmark): crypto, wire
// serialization, the event queue, H-graph maintenance, and walk stepping.
#include <benchmark/benchmark.h>

#include "common/binomial.h"
#include "common/rng.h"
#include "common/serde.h"
#include "crypto/hmac.h"
#include "crypto/keys.h"
#include "crypto/sha256.h"
#include "net/network.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "overlay/gossip.h"
#include "overlay/hgraph.h"
#include "overlay/random_walk.h"
#include "sim/simulator.h"
#include "smr/pbft.h"

using namespace atum;

static void BM_Sha256(benchmark::State& state) {
  Bytes data(static_cast<std::size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096)->Arg(1 << 20);

static void BM_HmacSign(benchmark::State& state) {
  crypto::KeyStore ks(1);
  const crypto::SigningKey& key = ks.key_of(7);
  Bytes msg(256, 0x11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(key.sign(msg));
  }
}
BENCHMARK(BM_HmacSign);

static void BM_SerdeRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    ByteWriter w;
    for (int i = 0; i < 16; ++i) {
      w.u64(static_cast<std::uint64_t>(i));
      w.varint(static_cast<std::uint64_t>(i * 1000));
    }
    ByteReader r(w.data());
    std::uint64_t sum = 0;
    for (int i = 0; i < 16; ++i) {
      sum += r.u64();
      sum += r.varint();
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_SerdeRoundTrip);

static void BM_SimulatorThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_at(i, [] {});
    }
    benchmark::DoNotOptimize(sim.run());
  }
}
BENCHMARK(BM_SimulatorThroughput);

// Group broadcast fan-out: one 4 KiB payload sent to N recipients through
// the simulated network, then delivered. This is Atum's hot path (every
// group message is sent to every member of the destination vgroup).
namespace {
constexpr std::size_t kFanoutPayloadBytes = 4096;

template <typename SendFn>
void run_fanout_bench(benchmark::State& state, SendFn&& send_one) {
  const auto recipients = static_cast<std::size_t>(state.range(0));
  sim::Simulator sim;
  net::SimNetwork net(sim, net::NetworkConfig::datacenter());
  std::uint64_t delivered = 0;
  for (NodeId n = 1; n <= recipients; ++n) {
    net.attach(n, [&delivered](const net::Message&) { ++delivered; });
  }
  for (auto _ : state) {
    for (NodeId n = 1; n <= recipients; ++n) send_one(net, n);
    sim.run();
  }
  benchmark::DoNotOptimize(delivered);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(recipients * kFanoutPayloadBytes));
}
}  // namespace

// The seed behavior: each recipient gets its own deep copy of the payload.
static void BM_BroadcastFanoutDeepCopy(benchmark::State& state) {
  Bytes payload(kFanoutPayloadBytes, 0xCD);
  run_fanout_bench(state, [&payload](net::SimNetwork& net, NodeId n) {
    net.send(net::Message{0, n, net::MsgType::kAppData, payload});  // freezes a fresh copy
  });
}
BENCHMARK(BM_BroadcastFanoutDeepCopy)->Arg(8)->Arg(64)->Arg(512);

// The overhauled path: freeze once, share the buffer across all recipients.
static void BM_BroadcastFanoutShared(benchmark::State& state) {
  net::Payload payload(Bytes(kFanoutPayloadBytes, 0xCD));
  run_fanout_bench(state, [&payload](net::SimNetwork& net, NodeId n) {
    net.send(net::Message{0, n, net::MsgType::kAppData, payload});
  });
}
BENCHMARK(BM_BroadcastFanoutShared)->Arg(8)->Arg(64)->Arg(512);

// Per-frame digest cache (net::Payload::digest). The cached variant is the
// group-message vouch path after PR 3: one SHA-256 per frame, then memo
// hits. The uncached variant is the old per-call cost for comparison.
static void BM_PayloadDigestUncached(benchmark::State& state) {
  net::Payload p(Bytes(static_cast<std::size_t>(state.range(0)), 0x5f));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256(p.data(), p.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_PayloadDigestUncached)->Arg(128)->Arg(4096);

static void BM_PayloadDigestCached(benchmark::State& state) {
  net::Payload p(Bytes(static_cast<std::size_t>(state.range(0)), 0x5f));
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.digest());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_PayloadDigestCached)->Arg(128)->Arg(4096);

// Vouch fan-out: one 4 KiB frame delivered to N receivers, every receiver
// needs its digest (what GroupMessageReceiver does to vouch). Cached: the
// first receiver hashes, the rest hit the frame memo.
namespace {
template <typename DigestFn>
void run_vouch_bench(benchmark::State& state, DigestFn&& digest_of) {
  const auto recipients = static_cast<std::size_t>(state.range(0));
  sim::Simulator sim;
  net::SimNetwork net(sim, net::NetworkConfig::datacenter());
  std::uint64_t sink = 0;
  for (NodeId n = 1; n <= recipients; ++n) {
    net.attach(n, [&](const net::Message& m) { sink += digest_of(m.payload)[0]; });
  }
  for (auto _ : state) {
    net::Payload frame(Bytes(kFanoutPayloadBytes, 0xCD));  // fresh frame per round
    for (NodeId n = 1; n <= recipients; ++n) {
      net.send(net::Message{0, n, net::MsgType::kAppData, frame});
    }
    sim.run();
  }
  benchmark::DoNotOptimize(sink);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(recipients * kFanoutPayloadBytes));
}
}  // namespace

static void BM_VouchFanoutUncached(benchmark::State& state) {
  run_vouch_bench(state, [](const net::Payload& p) { return crypto::sha256(p.data(), p.size()); });
}
BENCHMARK(BM_VouchFanoutUncached)->Arg(8)->Arg(64);

static void BM_VouchFanoutCached(benchmark::State& state) {
  run_vouch_bench(state, [](const net::Payload& p) { return p.digest(); });
}
BENCHMARK(BM_VouchFanoutCached)->Arg(8)->Arg(64);

// One PBFT group of 4 deciding a backlog of 64-byte ops at the given batch
// cap, wall-clock per decided op. batch 1 is classic PBFT; 4 and 16 show
// the host-side amortization (fewer messages, fewer digests, fewer quorum
// scans per op) on top of the simulated-time win bench_smr_throughput
// measures.
static void BM_PbftBatchDecide(benchmark::State& state) {
  const auto batch_cap = static_cast<std::size_t>(state.range(0));
  constexpr std::uint64_t kOps = 256;
  std::uint64_t decided_total = 0;
  for (auto _ : state) {
    sim::Simulator sim;
    net::SimNetwork net(sim, net::NetworkConfig::datacenter(), 0x5417);
    crypto::KeyStore keys(11);
    smr::GroupConfig cfg;
    for (NodeId i = 0; i < 4; ++i) cfg.members.push_back(i);
    smr::PbftOptions opt;
    opt.batch_max_ops = batch_cap;
    opt.view_change_timeout = seconds(60.0);
    std::vector<std::unique_ptr<smr::PbftSmr>> replicas;
    std::uint64_t decided = 0;
    for (NodeId i = 0; i < 4; ++i) {
      auto r = std::make_unique<smr::PbftSmr>(net::Transport(net, i), cfg, keys, opt);
      r->set_decide_handler(
          [&decided](std::uint64_t, NodeId, const net::Payload&) { ++decided; });
      replicas.push_back(std::move(r));
    }
    for (std::uint64_t i = 0; i < kOps; ++i) {
      replicas[0]->propose(Bytes(64, static_cast<std::uint8_t>(i)));
    }
    sim.run_until(sim.now() + seconds(120.0));
    decided_total += decided;
    for (auto& r : replicas) r->stop();
  }
  benchmark::DoNotOptimize(decided_total);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kOps));
}
BENCHMARK(BM_PbftBatchDecide)->Arg(1)->Arg(4)->Arg(16);

// Coalesced group-message fan-out: N same-tick frames to one destination
// leave as one envelope instead of N messages. Wall-clock cost of the
// enqueue + flush + decode round trip against the uncoalesced send loop.
static void BM_GossipCoalescedSend(benchmark::State& state) {
  const auto frames = static_cast<std::size_t>(state.range(0));
  sim::Simulator sim;
  net::SimNetwork net(sim, net::NetworkConfig::datacenter(), 0x5417);
  Rng rng(9);
  std::uint64_t delivered = 0;
  net.attach(1, [&delivered](const net::Message&) { ++delivered; });
  overlay::SendCoalescer coalescer(net::Transport(net, 0), rng);
  std::vector<net::Payload> payloads;
  for (std::size_t i = 0; i < frames; ++i) {
    ByteWriter w;
    w.u64(i);  // GroupMessageId-shaped prefix keeps frames distinct
    w.u64(0);
    w.bytes(Bytes(256, static_cast<std::uint8_t>(i)));
    payloads.emplace_back(w.take());
  }
  for (auto _ : state) {
    for (const net::Payload& p : payloads) {
      coalescer.enqueue(1, net::MsgType::kGroupMsgFull, p);
    }
    sim.run();
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(frames));
}
BENCHMARK(BM_GossipCoalescedSend)->Arg(1)->Arg(8)->Arg(32);

// Observability cells (ISSUE 9). The instrumentation contract is "near
// zero when idle": a cached Counter* bump is one relaxed fetch_add, a
// histogram record is two fetch_adds plus the bucket math, and a disabled
// tracer call is one relaxed bool load + branch. These pin those costs.
static void BM_CounterInc(benchmark::State& state) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("bench.counter");
  for (auto _ : state) {
    c.inc();
  }
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_CounterInc);

static void BM_HistogramRecord(benchmark::State& state) {
  obs::Registry reg;
  obs::Histogram& h = reg.histogram("bench.histogram");
  std::uint64_t v = 1;
  for (auto _ : state) {
    h.record(v);
    v = (v * 2862933555777941757ULL + 3037000493ULL) >> 32;  // vary the bucket
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramRecord);

static void BM_TraceDisabled(benchmark::State& state) {
  obs::Tracer tracer;  // default: disabled — the cost every hop pays always
  std::int64_t t = 0;
  for (auto _ : state) {
    tracer.record(++t, 7, obs::TracePoint::kRelay, 0x9e3779b97f4a7c15ULL, 12, 3);
  }
  benchmark::DoNotOptimize(tracer.recorded());
}
BENCHMARK(BM_TraceDisabled);

static void BM_TraceEnabled(benchmark::State& state) {
  obs::Tracer tracer;
  tracer.enable(/*ring_capacity=*/4096);
  std::int64_t t = 0;
  for (auto _ : state) {
    tracer.record(++t, 7, obs::TracePoint::kRelay, 0x9e3779b97f4a7c15ULL, 12, 3);
  }
  benchmark::DoNotOptimize(tracer.recorded());
}
BENCHMARK(BM_TraceEnabled);

static void BM_HGraphInsert(benchmark::State& state) {
  for (auto _ : state) {
    Rng rng(1);
    overlay::HGraph g(5);
    for (GroupId v = 0; v < 256; ++v) {
      if (v == 0) {
        g.add_first(v);
      } else {
        g.insert_random(v, rng);
      }
    }
    benchmark::DoNotOptimize(g.size());
  }
}
BENCHMARK(BM_HGraphInsert);

static void BM_WalkEndpoints(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        overlay::simulate_walk_endpoints(128, 5, 10, 10'000, rng));
  }
}
BENCHMARK(BM_WalkEndpoints);

static void BM_BinomialTail(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(binomial_tail_geq(56, 28, 0.06));
  }
}
BENCHMARK(BM_BinomialTail);
