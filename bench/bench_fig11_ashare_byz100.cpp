// Figure 11: as Figure 10 but at 100 nodes with more files — the same
// resilience shape at doubled scale.
#include "bench_ashare_byz_common.h"

int main() {
  atum::ashare_bench::run_byzantine_read_bench(
      "Figure 11", /*nodes=*/100, /*byzantine=*/7, /*files_per_point=*/8,
      /*chunk_bytes=*/128 * 1024, /*seed=*/0xF16'11ULL);
  return 0;
}
