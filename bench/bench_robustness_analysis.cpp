// §3.1 robustness analysis: the binomial arithmetic behind volatile-group
// sizing, reproducing the paper's worked examples and the k trade-off
// ("k = 4 is a good trade-off: even with 6% simultaneous arbitrary faults,
// the probability of all vgroups being robust is 0.999"), plus a
// Monte-Carlo cross-check of the analytic tails.
#include <cstdio>

#include "common/binomial.h"
#include "common/rng.h"

using namespace atum;

int main() {
  std::printf("=== Robustness analysis (paper §3.1) ===\n\n");

  std::printf("Worked examples (failure probability of one vgroup, p=0.05):\n");
  std::printf("  g=4,  f=1: P[X>=2]  = %.4f      (paper: 0.014)\n",
              binomial_tail_geq(4, 2, 0.05));
  std::printf("  g=20, f=9: P[X>=10] = %.4e  (paper: 1.134e-8)\n\n",
              binomial_tail_geq(20, 10, 0.05));

  std::printf("P(some vgroup NOT robust), g = k*log2(N), sync f = (g-1)/2, 6%% faults:\n");
  std::printf("%-8s", "k \\ N");
  for (double n : {500.0, 1000.0, 2000.0, 5000.0}) std::printf(" %-12.0f", n);
  std::printf("\n");
  for (std::uint32_t k = 3; k <= 7; ++k) {
    std::printf("%-8u", k);
    for (double n : {500.0, 1000.0, 2000.0, 5000.0}) {
      std::printf(" %-12.3e", 1.0 - all_vgroups_robust_probability(n, k, 0.06, true));
    }
    std::printf("\n");
  }
  std::printf("(k=4 row: failure odds well below 1e-3 -> P(all robust) >= 0.999, the paper's"
              " claim)\n\n");

  std::printf("Sync vs async fault thresholds, k=4, N=1000:\n");
  for (double rate : {0.02, 0.06, 0.10, 0.15}) {
    std::printf("  faults=%4.0f%%:  sync %.6f   async %.6f\n", rate * 100,
                all_vgroups_robust_probability(1000, 4, rate, true),
                all_vgroups_robust_probability(1000, 4, rate, false));
  }

  std::printf("\nMonte-Carlo cross-check of one-vgroup failure (g=14, f=6, p=0.06):\n");
  Rng rng(0xB0B5ULL);
  const int trials = 500000;
  int fails = 0;
  for (int t = 0; t < trials; ++t) {
    int faulty = 0;
    for (int i = 0; i < 14; ++i) faulty += rng.chance(0.06);
    fails += (faulty >= 7);
  }
  std::printf("  analytic  %.6e\n  empirical %.6e  (%d trials)\n",
              binomial_tail_geq(14, 7, 0.06), static_cast<double>(fails) / trials, trials);
  return 0;
}
