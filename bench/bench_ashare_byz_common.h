// Shared harness for Figures 10 and 11: AShare read latency under
// replica-corrupting Byzantine nodes, as a function of replica count.
#pragma once

#include <cstdio>
#include <memory>
#include <vector>

#include "apps/ashare/ashare.h"
#include "common/stats.h"

namespace atum::ashare_bench {

inline void run_byzantine_read_bench(const char* figure, std::size_t nodes,
                                     std::size_t byzantine, std::size_t files_per_point,
                                     std::size_t chunk_bytes, std::uint64_t seed) {
  using namespace atum::ashare;

  core::Params p;
  p.hc = 3;
  p.rwl = 5;
  p.gmax = 10;
  p.gmin = 5;
  p.round_duration = millis(100);
  p.heartbeat_period = seconds(300);

  auto net_cfg = net::NetworkConfig::datacenter();
  net_cfg.egress_bytes_per_sec = 6e6;
  net_cfg.ingress_bytes_per_sec = 12e6;

  core::AtumSystem sys(p, net_cfg, seed);
  std::vector<NodeId> ids;
  for (NodeId i = 0; i < nodes; ++i) {
    ids.push_back(i);
    sys.add_node(i);
  }
  sys.deploy(ids);

  std::vector<std::unique_ptr<AShareNode>> share;
  for (NodeId i = 0; i < nodes; ++i) {
    share.push_back(std::make_unique<AShareNode>(sys, i, 8, nodes));
    share.back()->set_auto_replication(false);
  }
  // The first `byzantine` non-owner nodes corrupt everything they store.
  for (std::size_t b = 1; b <= byzantine; ++b) share[b]->set_corrupt_replicas(true);

  auto settle = [&](DurationMicros d) {
    sys.simulator().run_until(sys.simulator().now() + d);
  };

  const std::size_t chunks = 10;
  const double mb = static_cast<double>(chunks * chunk_bytes) / 1e6;
  Rng rng(seed ^ 0x99);

  std::printf("=== %s: AShare read latency vs replica count (%zu nodes, %zu Byzantine, "
              "%zu files/point, 10 x %zuKB chunks) ===\n\n",
              figure, nodes, byzantine, files_per_point, chunk_bytes / 1024);
  std::printf("%-10s %-22s %-22s\n", "replicas", "all correct (s/MB)", "1-6 faulty (s/MB)");

  int file_no = 0;
  for (std::size_t replicas : {8u, 10u, 12u, 14u, 16u, 18u, 20u}) {
    Samples correct_lat, faulty_lat;
    for (int scenario = 0; scenario < 2; ++scenario) {
      bool with_faults = scenario == 1;
      for (std::size_t f = 0; f < files_per_point; ++f) {
        NodeId owner = byzantine + 1 + (rng.next_u64() % (nodes - byzantine - 1));
        std::string name = "file-" + std::to_string(file_no++);
        Bytes content(chunks * chunk_bytes);
        for (std::size_t i = 0; i < content.size(); i += 4096) {
          content[i] = static_cast<std::uint8_t>(rng.next_u64());
        }
        share[owner]->put(name, content, chunks);
        settle(seconds(8));

        // Pin replicas-1 extra holders: faulty scenario mixes in up to 6
        // Byzantine holders, correct scenario uses none.
        std::size_t byz_holders = with_faults ? std::min<std::size_t>(6, byzantine) : 0;
        std::size_t placed = 0;
        for (std::size_t b = 1; b <= byz_holders && placed + 1 < replicas; ++b, ++placed) {
          share[b]->force_replicate(FileKey{owner, name});
          settle(seconds(8));
        }
        for (NodeId h = static_cast<NodeId>(byzantine + 1);
             placed + 1 < replicas && h < nodes; ++h) {
          if (h == owner) continue;
          share[h]->force_replicate(FileKey{owner, name});
          settle(seconds(8));
          ++placed;
        }

        // A correct reader measures the GET.
        NodeId reader = owner;
        while (reader == owner) {
          reader = byzantine + 1 + (rng.next_u64() % (nodes - byzantine - 1));
        }
        GetStats stats;
        share[reader]->get(FileKey{owner, name}, [&](Bytes, const GetStats& s) { stats = s; });
        settle(seconds(60));
        if (stats.ok) {
          (with_faults ? faulty_lat : correct_lat).add(to_seconds(stats.elapsed) / mb);
        }
      }
    }
    std::printf("%-10zu %-22.3f %-22.3f\n", replicas,
                correct_lat.empty() ? -1.0 : correct_lat.mean(),
                faulty_lat.empty() ? -1.0 : faulty_lat.mean());
  }
  std::printf("\n(faulty replicas force re-pulls; the penalty shrinks once replicas ~ chunk"
              " count)\n");
}

}  // namespace atum::ashare_bench
