// ASub example: a multi-topic news feed (§4.1).
//
// Creates two topics, subscribes different reader sets, publishes events
// from several producers, and unsubscribes a reader — the pub/sub facade
// over Atum's group communication.
#include <cstdio>
#include <string>

#include "apps/asub/asub.h"

using namespace atum;
using namespace atum::asub;

namespace {

core::Params demo_params() {
  core::Params p;
  p.hc = 3;
  p.rwl = 4;
  p.gmax = 8;
  p.gmin = 4;
  p.round_duration = millis(50);
  p.heartbeat_period = seconds(10);
  return p;
}

void attach_printer(Topic& topic, NodeId subscriber) {
  topic.set_event_handler(subscriber, [name = topic.name(), subscriber](NodeId publisher,
                                                                        const atum::net::Payload& event) {
    std::printf("  [%s] subscriber %llu got \"%s\" (from %llu)\n", name.c_str(),
                static_cast<unsigned long long>(subscriber),
                std::string(event.begin(), event.end()).c_str(),
                static_cast<unsigned long long>(publisher));
  });
}

Bytes ev(const std::string& s) { return Bytes(s.begin(), s.end()); }

}  // namespace

int main() {
  ASubService service(demo_params(), net::NetworkConfig::datacenter(), 77);

  // create_topic == bootstrap
  Topic& sports = service.create_topic("sports", /*creator=*/1);
  Topic& science = service.create_topic("science", /*creator=*/1);
  attach_printer(sports, 1);
  attach_printer(science, 1);
  std::printf("topics created: sports, science\n");

  // subscribe == join
  for (NodeId reader : {2u, 3u, 4u}) {
    attach_printer(sports, reader);
    sports.subscribe(reader);
    sports.settle(seconds(40));
  }
  for (NodeId reader : {3u, 5u}) {
    attach_printer(science, reader);
    science.subscribe(reader);
    science.settle(seconds(40));
  }
  std::printf("subscriptions done (sports: 1-4, science: 1,3,5)\n\n");

  // publish == broadcast
  sports.publish(2, ev("home team wins 3-1"));
  sports.settle(seconds(15));
  science.publish(5, ev("volatile groups considered useful"));
  science.settle(seconds(15));

  // unsubscribe == leave
  sports.unsubscribe(3);
  sports.settle(seconds(20));
  std::printf("\nsubscriber 3 left sports; publishing again:\n");
  sports.publish(1, ev("transfer window opens"));
  sports.settle(seconds(15));

  std::printf("\n(subscriber 3 received nothing after unsubscribing — topic isolation and"
              "\n membership both handled by the underlying GCS)\n");
  return 0;
}
