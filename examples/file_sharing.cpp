// AShare example: a small file-sharing swarm (§4.2).
//
// Twelve nodes share files: PUT with chunking and digests, randomized
// replication to rho copies, SEARCH over the replicated index, a parallel
// chunked GET with integrity checks — including one node serving corrupted
// replicas that the reader detects and routes around — and DELETE.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "apps/ashare/ashare.h"

using namespace atum;
using namespace atum::ashare;

int main() {
  core::Params params;
  params.hc = 3;
  params.rwl = 4;
  params.gmax = 8;
  params.gmin = 4;
  params.round_duration = millis(50);
  params.heartbeat_period = seconds(30);

  core::AtumSystem system(params, net::NetworkConfig::datacenter(), 99);
  std::vector<NodeId> ids;
  for (NodeId i = 0; i < 12; ++i) {
    ids.push_back(i);
    system.add_node(i);
  }
  system.deploy(ids);

  std::vector<std::unique_ptr<AShareNode>> share;
  for (NodeId i = 0; i < 12; ++i) {
    share.push_back(std::make_unique<AShareNode>(system, i, /*rho=*/4, /*n=*/12));
  }
  auto settle = [&](double s) {
    system.simulator().run_until(system.simulator().now() + seconds(s));
  };

  // PUT: node 0 shares a "video" in 8 chunks; node 3 shares notes.
  Bytes video(400'000);
  for (std::size_t i = 0; i < video.size(); ++i) video[i] = static_cast<std::uint8_t>(i * 7);
  share[0]->put("holiday-video.mp4", video, 8);
  std::string notes_text = "volatile groups: small, dynamic, robust";
  share[3]->put("notes.txt", Bytes(notes_text.begin(), notes_text.end()), 1);
  settle(120);  // metadata broadcast + randomized replication rounds

  std::printf("after PUT + replication:\n");
  std::printf("  holiday-video.mp4 replicas: %zu (target rho=4)\n",
              share[7]->index().replica_count(FileKey{0, "holiday-video.mp4"}));
  std::printf("  notes.txt         replicas: %zu\n",
              share[7]->index().replica_count(FileKey{3, "notes.txt"}));

  // SEARCH from any node: the index is fully replicated soft state.
  auto results = share[9]->search("video");
  std::printf("\nSEARCH \"video\" at node 9 -> %zu result(s)\n", results.size());
  for (const auto& m : results) {
    std::printf("  %s (owner %llu, %llu bytes, %zu chunks, %zu replicas)\n",
                m.key.name.c_str(), static_cast<unsigned long long>(m.key.owner),
                static_cast<unsigned long long>(m.size),
                m.chunk_count(), m.holders.size());
  }

  // One replica holder goes rotten; a GET still returns authentic bytes.
  for (auto& node : share) {
    if (node->id() != 0 && node->has_replica(FileKey{0, "holiday-video.mp4"})) {
      std::printf("\nnode %llu will serve CORRUPTED chunks from now on\n",
                  static_cast<unsigned long long>(node->id()));
      node->set_corrupt_replicas(true);
      break;
    }
  }

  GetStats stats;
  Bytes fetched;
  share[11]->get(FileKey{0, "holiday-video.mp4"}, [&](Bytes content, const GetStats& s) {
    fetched = std::move(content);
    stats = s;
  });
  settle(120);
  std::printf("\nGET holiday-video.mp4 at node 11: ok=%d, %.3fs, %zu chunks, "
              "%zu corrupt chunk(s) re-pulled, authentic=%s\n",
              stats.ok, to_seconds(stats.elapsed), stats.chunks_total, stats.corrupt_chunks,
              fetched == video ? "yes" : "NO");

  // DELETE removes metadata and replicas everywhere.
  share[3]->del("notes.txt");
  settle(30);
  std::printf("\nafter DELETE notes.txt: search \"notes\" -> %zu results\n",
              share[6]->search("notes").size());
  return 0;
}
