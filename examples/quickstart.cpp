// Quickstart: the Atum API in one file.
//
// Bootstraps a one-node system, grows it through real join operations,
// broadcasts messages, demonstrates the forward callback, and shows a node
// leaving — the §3.3 API end to end.
#include <cstdio>
#include <string>

#include "core/atum.h"

using namespace atum;
using namespace atum::core;

int main() {
  // 1. Configure the deployment (Table 1 parameters). The guideline picks
  //    rwl/hc; we pass explicit values to keep the demo small.
  Params params;
  params.hc = 3;
  params.rwl = 4;
  params.gmax = 8;
  params.gmin = 4;
  params.engine = smr::EngineKind::kSync;
  params.round_duration = millis(50);
  params.heartbeat_period = seconds(10);

  AtumSystem system(params, net::NetworkConfig::datacenter(), /*seed=*/2024);
  auto& sim = system.simulator();

  // 2. bootstrap(): node 0 creates a single-vgroup Atum instance.
  auto& first = system.add_node(0);
  first.set_deliver([&](NodeId origin, const net::Payload& payload) {
    std::printf("  [t=%6.2fs] node 0 delivers \"%s\" from node %llu\n", to_seconds(sim.now()),
                std::string(payload.begin(), payload.end()).c_str(),
                static_cast<unsigned long long>(origin));
  });
  first.bootstrap();
  std::printf("node 0 bootstrapped (vgroup %llu)\n",
              static_cast<unsigned long long>(first.group_id()));

  // 3. join(contact): five more nodes join through node 0. Each join runs
  //    the full §3.3.2 protocol: contact-vgroup agreement, placement walk,
  //    SMR reconfiguration, state hand-off.
  for (NodeId n = 1; n <= 5; ++n) {
    auto& node = system.add_node(n);
    node.set_deliver([&, n](NodeId origin, const net::Payload& payload) {
      std::printf("  [t=%6.2fs] node %llu delivers \"%s\" from node %llu\n",
                  to_seconds(sim.now()), static_cast<unsigned long long>(n),
                  std::string(payload.begin(), payload.end()).c_str(),
                  static_cast<unsigned long long>(origin));
    });
    node.join(0);
    sim.run_until(sim.now() + seconds(30));
    std::printf("node %llu joined: vgroup %llu now has %zu members\n",
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(node.group_id()), node.vgroup().size());
  }

  // 4. broadcast(): two-phase dissemination (vgroup SMR + overlay gossip).
  std::printf("\nnode 2 broadcasts...\n");
  std::string hello = "hello, volatile groups!";
  system.node(2).broadcast(Bytes(hello.begin(), hello.end()));
  sim.run_until(sim.now() + seconds(10));

  // 5. The forward callback: restrict gossip to cycle 0 only — delivery is
  //    still guaranteed via the deterministic cycle-0 successor link.
  for (NodeId n = 0; n <= 5; ++n) {
    system.node(n).set_forward(overlay::forward_cycles({0}));
  }
  std::printf("\nnode 4 broadcasts with single-cycle forwarding...\n");
  std::string slow = "throughput mode";
  system.node(4).broadcast(Bytes(slow.begin(), slow.end()));
  sim.run_until(sim.now() + seconds(20));

  // 6. leave(): node 5 departs; its vgroup reconfigures.
  system.node(5).leave();
  sim.run_until(sim.now() + seconds(10));
  std::printf("\nnode 5 left; node 0's vgroup now has %zu members\n",
              system.node(0).vgroup().size());
  return 0;
}
