// AStream example: live streaming to 24 nodes (§4.3).
//
// Tier 1 (Atum) reliably broadcasts per-chunk digests; tier 2 streams the
// data over a spanning forest with f+1 parents per node. One interior node
// serves corrupted chunks: its children detect the digest mismatch and
// fail over to another parent, so every correct node still plays the
// stream.
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "apps/astream/astream.h"

using namespace atum;
using namespace atum::astream;

int main() {
  core::Params params;
  params.hc = 3;
  params.rwl = 4;
  params.gmax = 8;
  params.gmin = 4;
  params.round_duration = millis(100);
  params.heartbeat_period = seconds(60);

  core::AtumSystem system(params, net::NetworkConfig::datacenter(), 4242);
  std::vector<NodeId> ids;
  for (NodeId i = 0; i < 24; ++i) {
    ids.push_back(i);
    system.add_node(i);
  }
  system.deploy(ids);

  std::map<NodeId, std::uint64_t> chunks_played;
  std::vector<std::unique_ptr<AStreamNode>> stream;
  for (NodeId i = 0; i < 24; ++i) {
    stream.push_back(std::make_unique<AStreamNode>(system, i, StreamConfig{}));
    stream.back()->set_chunk_handler([&chunks_played, i](std::uint64_t seq, const net::Payload&) {
      chunks_played[i] = seq;
    });
  }

  // Build the forest rooted at node 0.
  for (auto& node : stream) node->join_stream(0);
  system.simulator().run_until(system.simulator().now() + seconds(5));

  std::printf("forest built: source has %zu direct children\n", stream[0]->child_count());
  std::printf("parents of node 13:");
  for (NodeId p : stream[13]->parents()) {
    std::printf(" %llu", static_cast<unsigned long long>(p));
  }
  std::printf("\n");

  // Sabotage: an interior node starts serving corrupted chunks.
  for (auto& node : stream) {
    if (node->id() != 0 && node->child_count() > 0) {
      std::printf("node %llu (with %zu children) now serves CORRUPTED chunks\n",
                  static_cast<unsigned long long>(node->id()), node->child_count());
      node->set_corrupt_chunks(true);
      break;
    }
  }

  // Stream ten 20 KB chunks (demo-sized: the data plane shares each node's
  // NIC with the SMR rounds; §5.1 discusses exactly this interference).
  std::printf("\nstreaming 10 chunks...\n");
  for (int c = 0; c < 10; ++c) {
    stream[0]->stream_chunk(Bytes(20'000, static_cast<std::uint8_t>(c)));
    system.simulator().run_until(system.simulator().now() + millis(100));
  }
  system.simulator().run_until(system.simulator().now() + seconds(120));

  std::size_t complete = 0;
  for (auto& [node, last] : chunks_played) complete += (last == 10);
  std::printf("nodes that played the full stream: %zu / 24\n", complete);
  std::printf("(children of the corrupt node verified digests from tier 1 and failed over"
              "\n to their other parents)\n");
  return 0;
}
